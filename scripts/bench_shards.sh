#!/bin/sh
# bench_shards.sh — ROADMAP item 1's multi-core measurement, one command
# on a real box: runs the shard-axis CityScale benchmarks (the scripted
# city load through the region-sharded dispatch path at every shard
# count) and snapshots the results into
# BENCH_SHARDS_<date>_p<GOMAXPROCS>.json. GOMAXPROCS is stamped into the
# snapshot name because it decides what the shard axis measures: at p=1
# the shards=8/shards=1 ratio is pure barrier-and-handoff overhead, at
# p>=8 it is the parallel speedup — snapshots from different boxes must
# never be confused for each other.
#
# Usage: scripts/bench_shards.sh [benchtime] [output.json]
#   benchtime: go test -benchtime value (default 2x; these are multi-second
#              city runs, so iteration counts beat wall-clock budgets)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-2x}"

procs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}"

if [ $# -ge 2 ]; then
	out="$2"
else
	# Never clobber an existing snapshot: append a run counter when the
	# dated name is taken (same convention as bench.sh).
	out="BENCH_SHARDS_$(date +%Y-%m-%d)_p${procs}.json"
	n=2
	while [ -e "$out" ]; do
		out="BENCH_SHARDS_$(date +%Y-%m-%d)_p${procs}.$n.json"
		n=$((n + 1))
	done
fi

echo "== shard-axis city benches (benchtime ${benchtime}, GOMAXPROCS ${procs})"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench '^BenchmarkCityScale$/^n=.*-shards=' \
	-benchtime "$benchtime" -benchmem -timeout 60m . | tee "$tmp"

grep -q '^BenchmarkCityScale' "$tmp" || {
	echo "bench-shards: no shard benchmarks ran" >&2
	exit 1
}

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | sed 's/[\\"]/\\&/g')"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	printf '  "gomaxprocs": %s,\n' "$procs"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "benchmarks": [\n'
	grep '^Benchmark' "$tmp" | tr '\t' ' ' | sed 's/[\\"]/\\&/g; s/^/    "/; s/$/",/' | sed '$ s/,$//'
	printf '  ]\n'
	printf '}\n'
} >"$out"

echo "== wrote $out"

# Speedup table: ns/simsec per shard count, normalized to shards=1 within
# each n — the number ROADMAP item 1 asks for.
awk '
	/^BenchmarkCityScale\// {
		name = $1
		sub(/-[0-9]+$/, "", name)
		sub(/^BenchmarkCityScale\//, "", name)
		if (!match(name, /-shards=[0-9]+$/)) next
		shards = substr(name, RSTART + 8) + 0
		n = substr(name, 1, RSTART - 1); sub(/^n=/, "", n)
		for (i = 2; i < NF; i++)
			if ($(i + 1) == "ns/simsec") nss[n, shards] = $i
		if (!(n in seen)) { order[++k] = n; seen[n] = 1 }
		counts[shards] = 1
	}
	END {
		printf "%-8s %8s %14s %9s\n", "n", "shards", "ns/simsec", "speedup"
		for (j = 1; j <= k; j++) {
			n = order[j]
			base = nss[n, 1]
			for (s = 1; s <= 64; s++) {
				if (!((n, s) in nss)) continue
				spd = (base > 0 && nss[n, s] > 0) ? base / nss[n, s] : 0
				printf "%-8s %8d %14.0f %8.2fx\n", n, s, nss[n, s], spd
			}
		}
	}
' "$tmp"
