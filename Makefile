GO ?= go

.PHONY: all build test vet tier1 bench bench-smoke bench-guard bench-shards docs lint golden golden-check race-probe city-scale-smoke shard-race serve-race serve-wire-race fuzz-smoke serve-soak clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# tier1 is the gate every PR must keep green.
tier1: build test

# docs checks that every package carries a doc comment for its godoc front
# page: `// Package <name>` for libraries (internal/* and the root),
# `// Command <name>` for cmd/*, and any leading doc comment for examples.
docs:
	@fail=0; \
	for d in internal/*/ .; do \
		grep -qs '^// Package ' $$d/*.go || { echo "missing '// Package' comment in $$d"; fail=1; }; \
	done; \
	for d in cmd/*/; do \
		grep -qs '^// Command ' $$d/*.go || { echo "missing '// Command' comment in $$d"; fail=1; }; \
	done; \
	for d in examples/*/; do \
		head -1 $$d/main.go | grep -qs '^//' || { echo "missing doc comment in $$d"; fail=1; }; \
	done; \
	[ $$fail -eq 0 ] && echo "package comments: OK" || exit 1

# lint is the static gate CI runs: formatting, vet, package comments.
lint: vet docs
	@test -z "$$(gofmt -l .)" || { echo "gofmt needed:"; gofmt -l .; exit 1; }

# golden regenerates the pinned goldens from the current model: the
# run-fingerprint goldens and the timeline-figure stdout. Only for
# deliberate, documented model changes — the goldens certify that
# performance kernels and refactors (like the estimator framework
# extraction and the probe bus) leave simulation trajectories
# bit-identical, so a regen that accompanies an "exact" rewrite is a red
# flag in review.
golden:
	$(GO) test ./internal/experiment -run TestGoldenRunFingerprints -update-goldens
	$(GO) test ./internal/scenario -run TestGoldenTimelineFigure -update-goldens

# golden-check verifies the committed goldens match the current model (the
# CI guard that a PR did not drift the model without regenerating — or
# regenerate without saying so; either way the diff makes it visible). It
# also asserts every golden config still compiles to the dense channel
# representation AND the serial event loop: the goldens certify the dense,
# serial reference trajectories, so a threshold change that silently
# flipped them to the sparse path or the sharded loop would hollow out
# what they certify.
golden-check:
	$(GO) test ./internal/experiment -run 'TestGoldenRunFingerprints|TestGoldenConfigsSelectDensePath|TestGoldenConfigsSelectSerialPath' -count=1
	$(GO) test ./internal/scenario -run TestGoldenTimelineFigure -count=1

# city-scale-smoke boots the 2000-node city corridor preset over the
# sparse audible-set channel under the race detector: representation pin
# (sparse selected, dense for goldens) plus a short end-to-end run that
# must form a tree and deliver traffic. The named CI step for the spatial
# index; the 10k preset is covered by the cheap precompute-only pin.
city-scale-smoke:
	$(GO) test -race -count=1 -run 'TestCityPresetsSelectSparse|TestCityScaleSmoke' ./internal/scenario
	$(GO) test -count=1 -run TestGoldenConfigsSelectDensePath ./internal/experiment

# shard-race runs the region-sharded dispatch surface under the race
# detector: the coordinator/worker barrier protocol, the cross-shard frame
# handoff (trace-exact merge, silent timers), and a full sharded
# protocol run with barrier-control dynamics. The shard-count differential
# matrices skip under -race (they are minutes-long city runs; their
# determinism claim is certified without the detector) — this target is
# the race coverage sized FOR the detector.
shard-race:
	$(GO) test -race -count=1 ./internal/sim
	$(GO) test -race -count=1 -run 'TestShard' ./internal/phy
	$(GO) test -race -count=1 -run 'TestShardDispatchRace|TestMultiSinkSmoke' ./internal/experiment ./internal/scenario

# race-probe runs the probe-bus test surface under the race detector: the
# bus itself is single-threaded per run, but many probed runs execute
# concurrently on the experiment worker pool, so the emit paths must stay
# data-race-free. CI runs the whole suite with -race; this target is the
# focused local loop.
race-probe:
	$(GO) test -race -count=1 ./internal/probe ./internal/trace ./internal/node
	$(GO) test -race -count=1 -run 'TestTimeline|TestReplicateCarriesTimelines' ./internal/experiment
	$(GO) test -race -count=1 -run 'TestAgility|TestWriteTimeline|TestScenarioTimelineRows' ./internal/scenario

# serve-race runs the estimation-service surface under the race detector:
# every instance pairs one worker goroutine against concurrent HTTP
# handlers (ingest, barrier-synced queries, snapshot, janitor eviction),
# so this is the layer where a data race would surface first. Includes
# the chaostest fault-injection harness end to end.
serve-race:
	$(GO) test -race -count=1 ./internal/serve/... ./cmd/fourbitsim

# serve-wire-race runs the binary wire surface under the race detector:
# the codec + converters, the batching client (whose Feed/Flush paths race
# against the server's pooled frame readers and batch admission), and the
# chaostest binary-surface certifications (cross-format bit-identity,
# kill/restore over binary, hostile frames, batch backpressure). serve-race
# covers these packages too; this is the focused loop for wire changes and
# the named CI step that surfaces a wire race in the job list.
serve-wire-race:
	$(GO) test -race -count=1 ./internal/serve/wire ./internal/serve/client
	$(GO) test -race -count=1 -run 'TestBinary' ./internal/serve/chaostest

# fuzz-smoke runs each native fuzz target briefly against the saved seed
# corpus plus a few seconds of new inputs — a tripwire for decoder
# regressions (panics, untyped errors, scratch aliasing), not a deep
# campaign. Longer runs: go test -fuzz FuzzDecodeEvent ./internal/serve/wire
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 5s ./internal/packet
	$(GO) test -run '^$$' -fuzz FuzzDecodeLEFrame -fuzztime 5s ./internal/packet
	$(GO) test -run '^$$' -fuzz FuzzDecodeEvent -fuzztime 5s ./internal/serve/wire
	$(GO) test -run '^$$' -fuzz FuzzDecodeWireBatch -fuzztime 5s ./internal/serve/wire

# serve-soak is the long-haul chaos run: 8 instances (2 per estimator
# kind) under sustained randomized ingest with concurrent queriers, one
# kill/snapshot/restore cycle in the middle, 60 s total, under -race.
# Nightly-tier — not part of tier1 or the per-PR CI gate.
serve-soak:
	$(GO) test -race -count=1 -run TestServeSoak ./internal/serve/chaostest \
		-soak -soak-duration 60s -timeout 10m -v

# bench runs vet + tier-1 + a one-iteration bench smoke and snapshots the
# results (with metadata) into BENCH_<date>.json for cross-PR perf diffs.
bench:
	./scripts/bench.sh

# bench-smoke: just the one-iteration bench pass, no snapshot.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# bench-shards runs the shard-axis CityScale benches and snapshots them
# into BENCH_SHARDS_<date>_p<GOMAXPROCS>.json with a speedup table —
# ROADMAP item 1's multi-core measurement as one command on a real box.
bench-shards:
	./scripts/bench_shards.sh

# bench-guard enforces the committed allocation budgets
# (scripts/alloc_budget.txt): CI fails when a budgeted benchmark's
# allocs/op regresses past its ceiling. ns/op is too machine-dependent to
# gate on; allocation counts are exact, so they make the durable ratchet.
bench-guard:
	./scripts/bench_guard.sh

# BENCH_*.json snapshots are committed perf history — clean leaves them.
clean:
	$(GO) clean ./...
