GO ?= go

.PHONY: all build test vet tier1 bench bench-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# tier1 is the gate every PR must keep green.
tier1: build test

# bench runs vet + tier-1 + a one-iteration bench smoke and snapshots the
# results (with metadata) into BENCH_<date>.json for cross-PR perf diffs.
bench:
	./scripts/bench.sh

# bench-smoke: just the one-iteration bench pass, no snapshot.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# BENCH_*.json snapshots are committed perf history — clean leaves them.
clean:
	$(GO) clean ./...
