module fourbit

go 1.21
