// Tracereplay: trace-driven simulation. Record the link dynamics of a live
// collection run (per-link PRR/LQI time series), save them as JSON, then
// re-impose the recorded behaviour of one link onto a fresh simulation — the
// workflow for reproducing a field failure in the lab.
//
// Run: go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fourbit"
	"fourbit/internal/collect"
	"fourbit/internal/ctp"
	"fourbit/internal/node"
)

func main() {
	// Phase 1: record. A 4-node line with a scripted bursty middle link.
	tp := fourbit.Line(4, 30)
	env := node.NewEnv(tp, node.DefaultEnvConfig(3, 0))
	ge := fourbit.NewGilbertElliott(50, 4*fourbit.Second, 4*fourbit.Second, 5)
	env.Chan.SetModifierBoth(1, 2, ge)

	rec := fourbit.NewTraceRecorder(env, 30*fourbit.Second, "line-capture")
	net := node.BuildCTP(env, ctp.DefaultConfig(), fourbit.DefaultEstimatorConfig(), collect.DefaultWorkload())
	env.Clock.RunUntil(10 * fourbit.Minute)
	tr := rec.Finalize()

	fmt.Printf("recorded %d links over 10 min (delivery %.1f%%)\n",
		len(tr.Links), net.Ledger.TotalDeliveryRatio()*100)

	// Save to JSON, reload — the trace is a portable artifact.
	path := filepath.Join(os.TempDir(), "fourbit-trace.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("trace written to %s\n", path)

	lt := tr.Link(1, 2)
	if lt == nil {
		log.Fatal("link 1->2 not observed in the trace")
	}
	var sent, rcvd int
	for _, s := range lt.Samples {
		sent += s.Sent
		rcvd += s.Rcvd
	}
	fmt.Printf("link 1->2 as recorded: PRR %.2f over %d beacons\n",
		float64(rcvd)/float64(sent), sent)

	// Phase 2: replay the recorded link 1->2 onto a clean line.
	env2 := node.NewEnv(tp, node.DefaultEnvConfig(4, 0))
	rp, err := fourbit.NewTraceReplayer(lt, 30*fourbit.Second, 77)
	if err != nil {
		log.Fatal(err)
	}
	env2.Chan.SetModifier(1, 2, rp)

	rec2 := fourbit.NewTraceRecorder(env2, 30*fourbit.Second, "replay")
	node.BuildCTP(env2, ctp.DefaultConfig(), fourbit.DefaultEstimatorConfig(), collect.DefaultWorkload())
	env2.Clock.RunUntil(10 * fourbit.Minute)
	tr2 := rec2.Finalize()

	if lt2 := tr2.Link(1, 2); lt2 != nil {
		var sent2, rcvd2 int
		for _, s := range lt2.Samples {
			sent2 += s.Sent
			rcvd2 += s.Rcvd
		}
		fmt.Printf("link 1->2 under replay:  PRR %.2f over %d beacons\n",
			float64(rcvd2)/float64(sent2), sent2)
	}
	fmt.Println("the replayed link reproduces the recorded loss process.")
}
