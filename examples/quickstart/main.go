// Quickstart: drive the 4B link estimator by hand, reproducing the worked
// example of the paper's Figure 5 — two estimate streams (beacon windows of
// kb=2, unicast ack windows of ku=5) folded into one hybrid ETX.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"fourbit"
)

func main() {
	const me, neighbor = 1, 7

	est := fourbit.NewEstimator(me, fourbit.DefaultEstimatorConfig(), nil, 42)

	show := func(step string) {
		if etx, ok := est.Quality(neighbor); ok {
			fmt.Printf("%-42s hybrid ETX = %.4f\n", step, etx)
		} else {
			fmt.Printf("%-42s hybrid ETX = (no estimate yet)\n", step)
		}
	}

	// A routing beacon arrives from the neighbor. The white bit says the
	// channel was clean during reception; the sequence number lets the
	// estimator count losses it never saw.
	beacon := func(seq uint16) {
		le := &fourbit.LEFrame{Seq: seq}
		est.OnBeacon(neighbor, le, fourbit.RxMeta{White: true, LQI: 108}, 0)
	}

	fmt.Println("== beacon stream (window kb = 2) ==")
	beacon(1)
	show("beacon seq 1 received")
	beacon(2)
	show("beacon seq 2 received -> window 2/2, PRR 1.0")

	beacon(3)
	beacon(6) // sequence gap: beacons 4 and 5 were lost
	show("beacons 3,6 received (4,5 lost) -> PRR 0.5")

	fmt.Println("\n== unicast stream: the ack bit (window ku = 5) ==")
	for i := 0; i < 5; i++ {
		est.TxResult(neighbor, i != 0) // 4 of 5 transmissions acked
	}
	show("5 data tx, 4 acked -> sample 5/4")

	for i := 0; i < 5; i++ {
		est.TxResult(neighbor, false)
	}
	show("5 straight failures -> sample 5")

	for i := 0; i < 5; i++ {
		est.TxResult(neighbor, false)
	}
	show("5 more failures -> sample 10 (run grows)")

	fmt.Println("\n== the network layer's bits ==")
	fmt.Printf("pin bit: Pin(%d) = %v (entry now immovable)\n", neighbor, est.Pin(neighbor))
	fmt.Printf("table: %v\n", est.Neighbors())

	// The compare bit is a callback the estimator issues when a white
	// packet from an unknown node arrives at a full table.
	est.SetComparer(fourbit.ComparerFunc(func(src fourbit.Addr, _ []byte) bool {
		fmt.Printf("compare bit asked for node %v -> saying yes\n", src)
		return true
	}))
	for i := 10; est.Table().Len() < est.Table().Cap(); i++ {
		le := &fourbit.LEFrame{Seq: 1}
		est.OnBeacon(fourbit.Addr(i), le, fourbit.RxMeta{White: true}, 0)
	}
	le := &fourbit.LEFrame{Seq: 1}
	est.OnBeacon(99, le, fourbit.RxMeta{White: true}, 0)
	fmt.Printf("table after white+compare admission: %v\n", est.Neighbors())
}
