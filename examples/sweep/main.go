// Sweep: the declarative scenario engine through the Go API.
//
// The question this example asks is one the paper could not: does the 4B
// advantage survive a *changing* network? The sweep crosses two topologies
// (a dense two-tier cluster and a thin corridor) with two protocols, and
// every cell carries the same scripted dynamics: a third of the nodes die
// at minute 4 and reboot at minute 8, then external interference blankets
// half the network for the last third of the run. Each cell replicates
// over 3 seeds; the CSV lands on stdout for plotting.
//
// The same sweep as JSON (for `fourbitsim sweep -spec`) is printed first —
// every field below has a 1:1 JSON form.
//
// Run: go run ./examples/sweep
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"fourbit"
)

func main() {
	var churn []int
	for i := 3; i < 36; i += 3 {
		churn = append(churn, i)
	}
	// The base leaves WidthM/HeightM unset so each generator keeps its own
	// shape: clustered defaults to a 50×30 m floor, corridor to a hallway
	// 4 m wide (WidthM means "hallway width" there, and 40 m of it would
	// make the corridor a square room).
	sw := fourbit.Sweep{
		Name: "churn-and-interference",
		Base: fourbit.Scenario{
			Topology:    fourbit.ScenarioTopo{N: 36, Clusters: 4, LengthM: 90},
			Seed:        7,
			DurationMin: 12,
			WarmupMin:   2,
			Replicates:  3,
			Dynamics: []fourbit.ScenarioEvent{
				{Kind: "node-down", AtMin: 4, UntilMin: 8, Nodes: churn},
				{Kind: "interference", AtMin: 8, AmpDB: 25, MeanOnMS: 800, MeanOffS: 3},
			},
		},
		Axes: []fourbit.SweepAxis{
			{Param: "topology", Strings: []string{"clustered", "corridor"}},
			{Param: "protocol", Strings: []string{"4B", "MultiHopLQI"}},
		},
	}

	spec, _ := json.MarshalIndent(sw, "", "  ")
	fmt.Printf("spec (save as sweep.json and run `fourbitsim sweep -spec sweep.json`):\n%s\n\n", spec)

	res, err := sw.Run(0) // 0 workers = the default pool (all CPUs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res.Fprint(os.Stdout)
	fmt.Println()
	if err := res.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
