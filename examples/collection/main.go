// Collection: run the paper's headline comparison in miniature — a 5x5
// sensor grid collecting readings to a corner sink for ten simulated
// minutes, once with CTP+4B and once with MultiHopLQI — and print cost,
// tree depth and delivery for each.
//
// Run: go run ./examples/collection
package main

import (
	"fmt"

	"fourbit"
)

func main() {
	tp := fourbit.Grid(5, 5, 14) // 5x5 nodes, 14 m spacing, root at a corner

	fmt.Printf("collection on %s (%d nodes, root %d), 10 simulated minutes\n\n",
		tp.Name, tp.N(), tp.Root)
	fmt.Printf("%-14s %8s %8s %10s %12s\n", "protocol", "cost", "depth", "delivery", "beacons")

	for _, proto := range []fourbit.Protocol{fourbit.Proto4B, fourbit.ProtoMultiHopLQI} {
		rc := fourbit.DefaultRunConfig(proto, tp, 7)
		rc.Duration = 10 * fourbit.Minute
		rc.Warmup = 2 * fourbit.Minute
		res := fourbit.Run(rc)
		fmt.Printf("%-14s %8.2f %8.2f %9.1f%% %12d\n",
			res.Protocol, res.Cost, res.MeanDepth, res.DeliveryRatio*100, res.BeaconTx)
	}

	fmt.Println("\ncost = data transmissions per unique delivered packet (lower is better);")
	fmt.Println("the 4B estimator needs fewer transmissions per delivery because the ack")
	fmt.Println("bit steers it away from links that silently drop packets.")
}
