// Burstylink: the paper's Figure 3 failure case as a three-node scenario.
//
// Node C can reach the root R directly over a link that a Gilbert-Elliott
// process silences 75% of the time — but whose received packets carry
// saturated LQI — or via helper A over two clean hops. MultiHopLQI trusts
// the LQI of the beacons it receives and keeps the direct link; the 4B
// estimator counts the beacons that never arrived (sequence gaps) and the
// acks that never came back, and routes around it.
//
// Run: go run ./examples/burstylink
package main

import (
	"fmt"

	"fourbit"
)

func main() {
	build := func() *fourbit.Topology {
		return &fourbit.Topology{
			Name: "bursty-triangle",
			Positions: []fourbit.Point{
				{X: 0, Y: 0},  // root R
				{X: 12, Y: 5}, // helper A: clean hops to both
				{X: 24, Y: 0}, // leaf C: direct link to R is bursty
			},
		}
	}

	run := func(proto fourbit.Protocol) *fourbit.Result {
		rc := fourbit.DefaultRunConfig(proto, build(), 11)
		rc.Duration = 12 * fourbit.Minute
		rc.Workload.Period = 2 * fourbit.Second
		rc.EnvMutate = func(env *fourbit.Env) {
			// Quiet channel except the scripted burst process, so the
			// comparison is exactly about the bursty link.
			ge := fourbit.NewGilbertElliott(50, 2500*fourbit.Millisecond, 7500*fourbit.Millisecond, 99)
			env.Chan.SetModifierBoth(0, 2, ge)
		}
		return fourbit.Run(rc)
	}

	fmt.Println("leaf C: direct link to root is silent 75% of the time (LQI high when alive)")
	fmt.Printf("%-14s %10s %14s %16s\n", "protocol", "C's parent", "C's delivery", "network cost")
	for _, proto := range []fourbit.Protocol{fourbit.Proto4B, fourbit.ProtoMultiHopLQI} {
		res := run(proto)
		parent := res.FinalParents[2]
		cDelivery := res.PerNodeDelivery[1] // origins in addr order: node1, node2
		fmt.Printf("%-14s %10d %13.1f%% %16.2f\n", res.Protocol, parent, cDelivery*100, res.Cost)
	}
	fmt.Println("\nparent 1 = routed around the burst (via A); parent 0 = hammering the bursty link")
}
