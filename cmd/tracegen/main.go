// Command tracegen records per-link PRR/LQI traces from a simulated
// collection run and writes them as JSON — the input format of the
// trace-driven replay mode (see examples/tracereplay).
//
// Usage:
//
//	tracegen [-topo mirage|tutornet] [-proto 4b|lqi] [-seed N]
//	         [-minutes M] [-window S] [-o file]
package main

import (
	"flag"
	"fmt"
	"os"

	"fourbit/internal/collect"
	"fourbit/internal/core"
	"fourbit/internal/ctp"
	"fourbit/internal/lqirouter"
	"fourbit/internal/node"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
	"fourbit/internal/trace"
)

func main() {
	topoName := flag.String("topo", "mirage", "mirage | tutornet")
	proto := flag.String("proto", "4b", "4b | lqi (traffic driving the trace)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	minutes := flag.Float64("minutes", 20, "simulated duration")
	window := flag.Float64("window", 60, "sampling window in seconds")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var tp *topo.Topology
	switch *topoName {
	case "mirage":
		tp = topo.Mirage(*seed)
	case "tutornet":
		tp = topo.TutorNet(*seed)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown topo %q\n", *topoName)
		os.Exit(2)
	}

	env := node.NewEnv(tp, node.DefaultEnvConfig(*seed, 0))
	rec := trace.NewRecorder(env.Clock, env.Medium, sim.FromSeconds(*window),
		fmt.Sprintf("%s-%s", *topoName, *proto))
	switch *proto {
	case "4b":
		node.BuildCTP(env, ctp.DefaultConfig(), core.DefaultConfig(), collect.DefaultWorkload())
	case "lqi":
		node.BuildLQI(env, lqirouter.DefaultConfig(), collect.DefaultWorkload())
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown proto %q\n", *proto)
		os.Exit(2)
	}
	env.Clock.RunUntil(sim.FromSeconds(*minutes * 60))
	tr := rec.Finalize()

	f := os.Stdout
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	if err := tr.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d links, window %gs, %s traffic on %s\n",
		len(tr.Links), *window, *proto, tp.Name)
}
