// Command topogen generates testbed topologies as JSON (positions, floors,
// clutter parameters) for inspection or external tooling.
//
// Usage:
//
//	topogen -kind mirage|tutornet|grid|line|uniform [-seed N] [-n N]
//	        [-rows R -cols C] [-spacing M] [-w M -h M] [-o file]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fourbit/internal/topo"
)

func main() {
	kind := flag.String("kind", "mirage", "mirage | tutornet | grid | line | uniform")
	seed := flag.Uint64("seed", 1, "layout seed")
	n := flag.Int("n", 50, "node count (line, uniform)")
	rows := flag.Int("rows", 5, "grid rows")
	cols := flag.Int("cols", 5, "grid cols")
	spacing := flag.Float64("spacing", 10, "spacing in meters (grid, line)")
	w := flag.Float64("w", 50, "area width (uniform)")
	h := flag.Float64("h", 30, "area height (uniform)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var t *topo.Topology
	switch *kind {
	case "mirage":
		t = topo.Mirage(*seed)
	case "tutornet":
		t = topo.TutorNet(*seed)
	case "grid":
		t = topo.Grid(*rows, *cols, *spacing)
	case "line":
		t = topo.Line(*n, *spacing)
	case "uniform":
		t = topo.UniformRandom(*n, *w, *h, *seed)
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	f := os.Stdout
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(t); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}
