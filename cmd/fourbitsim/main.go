// Command fourbitsim runs the paper's experiments. Each subcommand
// regenerates one figure (or the headline table) of "Four-Bit Wireless Link
// Estimation" (HotNets 2007); see DESIGN.md for the experiment index.
//
// The independent runs behind a figure execute on a worker pool sized by
// -workers (default: all CPUs); results are identical for every pool size.
//
// Usage:
//
//	fourbitsim fig2      [-seed N] [-minutes M] [-workers W]
//	fourbitsim fig3      [-seed N] [-hours H] [-from H] [-until H]
//	fourbitsim fig6      [-seed N] [-minutes M] [-workers W]
//	fourbitsim fig7      [-seed N] [-minutes M] [-workers W]
//	fourbitsim fig8      [-seed N] [-minutes M] [-workers W]
//	fourbitsim headline  [-seed N] [-minutes M] [-workers W]
//	fourbitsim replicate [-seed N] [-minutes M] [-workers W] [-proto P] [-power dBm] [-seeds K]
//	fourbitsim all       [-seed N] [-minutes M] [-workers W]
package main

import (
	"flag"
	"fmt"
	"os"

	"fourbit/internal/experiment"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "experiment seed")
	minutes := fs.Float64("minutes", 25, "simulated duration per run (minutes)")
	hours := fs.Float64("hours", 12, "fig3: simulated duration (hours)")
	from := fs.Float64("from", 4, "fig3: degradation start (hours)")
	until := fs.Float64("until", 6, "fig3: degradation end (hours)")
	workers := fs.Int("workers", experiment.DefaultWorkers(), "parallel runs (<2 = serial)")
	proto := fs.String("proto", "4B", "replicate: protocol under test")
	power := fs.Float64("power", 0, "replicate: transmit power (dBm)")
	nSeeds := fs.Int("seeds", 5, "replicate: number of independent seeds")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	dur := sim.FromSeconds(*minutes * 60)

	switch cmd {
	case "fig2":
		experiment.RunFig2Workers(*seed, dur, *workers).Fprint(os.Stdout)
	case "fig3":
		cfg := experiment.DefaultFig3Config(*seed)
		cfg.Duration = sim.FromSeconds(*hours * 3600)
		cfg.DegradeFrom = sim.FromSeconds(*from * 3600)
		cfg.DegradeUntil = sim.FromSeconds(*until * 3600)
		experiment.RunFig3(cfg).Fprint(os.Stdout)
	case "fig6":
		experiment.RunFig6Workers(*seed, dur, *workers).Fprint(os.Stdout)
	case "fig7":
		experiment.RunPowerSweepWorkers(*seed, dur, *workers).FprintFig7(os.Stdout)
	case "fig8":
		experiment.RunPowerSweepWorkers(*seed, dur, *workers).FprintFig8(os.Stdout)
	case "headline":
		experiment.RunHeadlineWorkers(*seed, dur, *workers).Fprint(os.Stdout)
	case "replicate":
		p, err := experiment.ParseProtocol(*proto)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		rc := experiment.DefaultRunConfig(p, topo.Mirage(*seed), *seed)
		rc.TxPowerDBm = *power
		rc.Duration = dur
		experiment.ReplicateWorkers(rc, *nSeeds, *workers).Fprint(os.Stdout)
	case "all":
		experiment.RunFig2Workers(*seed, dur, *workers).Fprint(os.Stdout)
		fmt.Println()
		experiment.RunFig6Workers(*seed, dur, *workers).Fprint(os.Stdout)
		fmt.Println()
		sweep := experiment.RunPowerSweepWorkers(*seed, dur, *workers)
		sweep.FprintFig7(os.Stdout)
		fmt.Println()
		sweep.FprintFig8(os.Stdout)
		fmt.Println()
		experiment.RunHeadlineWorkers(*seed, dur, *workers).Fprint(os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `fourbitsim — reproduce "Four-Bit Wireless Link Estimation" (HotNets'07)

subcommands:
  fig2      routing trees + cost: CTP(10), MultiHopLQI, CTP(unlimited)
  fig3      12h MultiHopLQI run; PRR collapses while LQI stays high
  fig6      design space: CTP, +unidir, +white, 4B, MultiHopLQI
  fig7      power sweep 0/-10/-20 dBm: cost & depth, 4B vs MultiHopLQI
  fig8      power sweep: per-node delivery boxplots
  headline  4B vs MultiHopLQI on Mirage and TutorNet
  replicate one protocol across K independent seeds, with mean ± stddev
  all       everything except fig3`)
}
