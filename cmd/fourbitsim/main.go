// Command fourbitsim runs the paper's experiments. Each subcommand
// regenerates one figure (or the headline table) of "Four-Bit Wireless Link
// Estimation" (HotNets 2007); see DESIGN.md for the experiment index.
//
// Usage:
//
//	fourbitsim fig2     [-seed N] [-minutes M]
//	fourbitsim fig3     [-seed N] [-hours H] [-from H] [-until H]
//	fourbitsim fig6     [-seed N] [-minutes M]
//	fourbitsim fig7     [-seed N] [-minutes M]
//	fourbitsim fig8     [-seed N] [-minutes M]
//	fourbitsim headline [-seed N] [-minutes M]
//	fourbitsim all      [-seed N] [-minutes M]
package main

import (
	"flag"
	"fmt"
	"os"

	"fourbit/internal/experiment"
	"fourbit/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "experiment seed")
	minutes := fs.Float64("minutes", 25, "simulated duration per run (minutes)")
	hours := fs.Float64("hours", 12, "fig3: simulated duration (hours)")
	from := fs.Float64("from", 4, "fig3: degradation start (hours)")
	until := fs.Float64("until", 6, "fig3: degradation end (hours)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	dur := sim.FromSeconds(*minutes * 60)

	switch cmd {
	case "fig2":
		experiment.RunFig2(*seed, dur).Fprint(os.Stdout)
	case "fig3":
		cfg := experiment.DefaultFig3Config(*seed)
		cfg.Duration = sim.FromSeconds(*hours * 3600)
		cfg.DegradeFrom = sim.FromSeconds(*from * 3600)
		cfg.DegradeUntil = sim.FromSeconds(*until * 3600)
		experiment.RunFig3(cfg).Fprint(os.Stdout)
	case "fig6":
		experiment.RunFig6(*seed, dur).Fprint(os.Stdout)
	case "fig7":
		experiment.RunPowerSweep(*seed, dur).FprintFig7(os.Stdout)
	case "fig8":
		experiment.RunPowerSweep(*seed, dur).FprintFig8(os.Stdout)
	case "headline":
		experiment.RunHeadline(*seed, dur).Fprint(os.Stdout)
	case "all":
		experiment.RunFig2(*seed, dur).Fprint(os.Stdout)
		fmt.Println()
		experiment.RunFig6(*seed, dur).Fprint(os.Stdout)
		fmt.Println()
		sweep := experiment.RunPowerSweep(*seed, dur)
		sweep.FprintFig7(os.Stdout)
		fmt.Println()
		sweep.FprintFig8(os.Stdout)
		fmt.Println()
		experiment.RunHeadline(*seed, dur).Fprint(os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `fourbitsim — reproduce "Four-Bit Wireless Link Estimation" (HotNets'07)

subcommands:
  fig2      routing trees + cost: CTP(10), MultiHopLQI, CTP(unlimited)
  fig3      12h MultiHopLQI run; PRR collapses while LQI stays high
  fig6      design space: CTP, +unidir, +white, 4B, MultiHopLQI
  fig7      power sweep 0/-10/-20 dBm: cost & depth, 4B vs MultiHopLQI
  fig8      power sweep: per-node delivery boxplots
  headline  4B vs MultiHopLQI on Mirage and TutorNet
  all       everything except fig3`)
}
