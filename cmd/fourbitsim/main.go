// Command fourbitsim runs the paper's experiments and arbitrary scenario
// sweeps. The figure subcommands regenerate the measured figures of
// "Four-Bit Wireless Link Estimation" (HotNets 2007) through their
// scenario presets; `scenario` and `sweep` run declarative JSON specs (see
// docs/SCENARIOS.md for the cookbook and DESIGN.md for the experiment
// index).
//
// The independent runs behind a figure, scenario replication, or sweep
// execute on a worker pool sized by -workers (default: all CPUs); results
// are byte-identical for every pool size.
//
// Usage:
//
//	fourbitsim fig2      [-seed N] [-minutes M] [-workers W]
//	fourbitsim fig3      [-seed N] [-hours H] [-from H] [-until H]
//	fourbitsim fig6      [-seed N] [-minutes M] [-workers W]
//	fourbitsim fig7      [-seed N] [-minutes M] [-workers W]
//	fourbitsim fig8      [-seed N] [-minutes M] [-workers W]
//	fourbitsim headline  [-seed N] [-minutes M] [-workers W]
//	fourbitsim compare   [-seed N] [-minutes M] [-workers W]
//	fourbitsim replicate [-seed N] [-minutes M] [-workers W] [-proto P] [-power dBm] [-seeds K] [-estimator E]
//	fourbitsim scenario  [-preset NAME | -spec FILE | -list] [-seed N] [-workers W] [-estimator E]
//	fourbitsim sweep     [-spec FILE] [-seed N] [-minutes M] [-replicates K]
//	                     [-csv FILE] [-jsonl FILE] [-workers W]
//	fourbitsim all       [-seed N] [-minutes M] [-workers W]
//
// Every subcommand also accepts -cpuprofile FILE and -memprofile FILE to
// capture paper-scale pprof profiles of exactly the workload it runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"fourbit/internal/core"
	"fourbit/internal/experiment"
	"fourbit/internal/scenario"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "experiment seed (replicate/sweep seeds derive from it)")
	minutes := fs.Float64("minutes", 25, "simulated duration per run (minutes)")
	hours := fs.Float64("hours", 12, "fig3: simulated duration (hours)")
	from := fs.Float64("from", 4, "fig3: degradation start (hours)")
	until := fs.Float64("until", 6, "fig3: degradation end (hours)")
	workers := fs.Int("workers", experiment.DefaultWorkers(), "parallel runs (<2 = serial)")
	proto := fs.String("proto", "4B", "replicate: protocol under test (4B, CTP, CTP+unidir, CTP+white, CTP-unlimited, MultiHopLQI)")
	estimator := fs.String("estimator", "", "replicate/scenario: link-estimator kind for CTP-family protocols (4bit, wmewma, pdr, lqi; empty = the protocol default)")
	power := fs.Float64("power", 0, "replicate: transmit power (dBm)")
	nSeeds := fs.Int("seeds", 5, "replicate: number of independent seeds")
	specFile := fs.String("spec", "", "scenario/sweep: JSON spec file (see docs/SCENARIOS.md)")
	preset := fs.String("preset", "", "scenario: built-in preset name (see -list)")
	list := fs.Bool("list", false, "scenario: list built-in presets and exit")
	replicates := fs.Int("replicates", 3, "sweep: seeds per grid cell (overridden by the spec's Replicates)")
	csvOut := fs.String("csv", "", "sweep: write the result table as CSV to this file ('-' = stdout)")
	jsonlOut := fs.String("jsonl", "", "sweep: write per-cell JSONL results to this file ('-' = stdout)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
	memProfile := fs.String("memprofile", "", "write an end-of-run heap profile to this file (inspect with go tool pprof)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *minutes <= 0 {
		fatal(fmt.Errorf("-minutes must be positive, got %g", *minutes))
	}
	// Profiles capture paper-scale workloads without editing code: any
	// subcommand accepts them, so `fourbitsim fig7 -cpuprofile cpu.out`
	// profiles exactly what the paper runs. The files are finalized when
	// the subcommand returns normally (error exits abandon them).
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	dur := sim.FromSeconds(*minutes * 60)

	switch cmd {
	case "fig2":
		scenario.RunFig2(*seed, *minutes, *workers).Fprint(os.Stdout)
	case "fig3":
		cfg := experiment.DefaultFig3Config(*seed)
		cfg.Duration = sim.FromSeconds(*hours * 3600)
		cfg.DegradeFrom = sim.FromSeconds(*from * 3600)
		cfg.DegradeUntil = sim.FromSeconds(*until * 3600)
		experiment.RunFig3(cfg).Fprint(os.Stdout)
	case "fig6":
		scenario.RunFig6(*seed, *minutes, *workers).Fprint(os.Stdout)
	case "fig7":
		scenario.RunPowerSweep(*seed, *minutes, *workers).FprintFig7(os.Stdout)
	case "fig8":
		scenario.RunPowerSweep(*seed, *minutes, *workers).FprintFig8(os.Stdout)
	case "headline":
		scenario.RunHeadline(*seed, *minutes, *workers).Fprint(os.Stdout)
	case "compare":
		scenario.RunEstCompare(*seed, *minutes, *workers).Fprint(os.Stdout)
	case "replicate":
		p, err := experiment.ParseProtocol(*proto)
		if err != nil {
			fatal(err)
		}
		rc := experiment.DefaultRunConfig(p, topo.Mirage(*seed), *seed)
		rc.TxPowerDBm = *power
		rc.Duration = dur
		if *estimator != "" {
			if p == experiment.ProtoMultiHopLQI {
				fatal(fmt.Errorf("-estimator does not apply to MultiHopLQI (estimation is inline)"))
			}
			kind, err := core.ParseEstimatorKind(*estimator)
			if err != nil {
				fatal(err)
			}
			rc.Estimator = kind
		}
		experiment.ReplicateWorkers(rc, *nSeeds, *workers).Fprint(os.Stdout)
	case "scenario":
		runScenario(fs, *specFile, *preset, *list, *seed, *minutes, *replicates, *estimator, *workers)
	case "sweep":
		runSweep(fs, *specFile, *seed, *minutes, *replicates, *csvOut, *jsonlOut, *workers)
	case "all":
		scenario.RunFig2(*seed, *minutes, *workers).Fprint(os.Stdout)
		fmt.Println()
		scenario.RunFig6(*seed, *minutes, *workers).Fprint(os.Stdout)
		fmt.Println()
		sweep := scenario.RunPowerSweep(*seed, *minutes, *workers)
		sweep.FprintFig7(os.Stdout)
		fmt.Println()
		sweep.FprintFig8(os.Stdout)
		fmt.Println()
		scenario.RunHeadline(*seed, *minutes, *workers).Fprint(os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
}

// flagSet reports whether the user passed name explicitly.
func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runScenario executes one scenario from a preset or a JSON spec file.
// Explicit -seed/-minutes/-replicates/-estimator flags override what the
// preset or spec file says.
func runScenario(fs *flag.FlagSet, specFile, preset string, list bool, seed uint64, minutes float64, replicates int, estimator string, workers int) {
	if list {
		fmt.Println("built-in scenario presets:")
		for _, p := range scenario.Presets() {
			fmt.Printf("  %-26s %s\n", p.Name, p.Desc)
		}
		return
	}
	var spec scenario.Spec
	switch {
	case specFile != "":
		data, err := os.ReadFile(specFile)
		if err != nil {
			fatal(err)
		}
		spec, err = scenario.ParseSpec(data)
		if err != nil {
			fatal(err)
		}
	case preset != "":
		p, ok := scenario.Preset(preset)
		if !ok {
			fatal(fmt.Errorf("unknown preset %q (use -list)", preset))
		}
		spec = p.Spec
	default:
		fatal(fmt.Errorf("scenario needs -preset NAME, -spec FILE, or -list"))
	}
	if flagSet(fs, "seed") {
		spec.Seed = seed
	}
	if flagSet(fs, "minutes") {
		spec.DurationMin = minutes
	}
	if flagSet(fs, "replicates") {
		spec.Replicates = replicates
	}
	if flagSet(fs, "estimator") {
		spec.Estimator = estimator
	}
	rep, err := spec.Run(workers)
	if err != nil {
		fatal(err)
	}
	name := spec.Name
	if name == "" {
		name = "scenario"
	}
	fmt.Printf("%s:\n", name)
	rep.Fprint(os.Stdout)
}

// runSweep executes a parameter grid and writes its exports. With a spec
// file, explicit -seed/-minutes/-replicates flags override the file's base.
func runSweep(fs *flag.FlagSet, specFile string, seed uint64, minutes float64, replicates int, csvOut, jsonlOut string, workers int) {
	var sw scenario.Sweep
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			fatal(err)
		}
		sw, err = scenario.ParseSweep(data)
		if err != nil {
			fatal(err)
		}
		if flagSet(fs, "seed") {
			sw.Base.Seed = seed
		}
		if flagSet(fs, "minutes") {
			sw.Base.DurationMin = minutes
		}
		if flagSet(fs, "replicates") {
			sw.Base.Replicates = replicates
		}
	} else {
		sw = scenario.DefaultSweep(seed, minutes, replicates)
	}
	res, err := sw.Run(workers)
	if err != nil {
		fatal(err)
	}
	res.Fprint(os.Stdout)
	write := func(path, what string, emit func(*os.File) error) {
		if path == "" {
			return
		}
		if path == "-" {
			if err := emit(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := emit(f); err != nil {
			f.Close()
			fatal(err)
		}
		// A close failure (ENOSPC write-back) would silently truncate the
		// results of a possibly hours-long sweep.
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s to %s\n", what, path)
	}
	write(csvOut, "CSV", func(f *os.File) error { return res.WriteCSV(f) })
	write(jsonlOut, "JSONL", func(f *os.File) error { return res.WriteJSONL(f) })
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, `fourbitsim — reproduce "Four-Bit Wireless Link Estimation" (HotNets'07)
and run declarative scenarios and parameter sweeps on the same harness.

subcommands:
  fig2      routing trees + cost: CTP(10), MultiHopLQI, CTP(unlimited)
  fig3      12h MultiHopLQI run; PRR collapses while LQI stays high
  fig6      design space: CTP, +unidir, +white, 4B, MultiHopLQI
  fig7      power sweep 0/-10/-20 dBm: cost & depth, 4B vs MultiHopLQI
  fig8      power sweep: per-node delivery boxplots
  headline  4B vs MultiHopLQI on Mirage and TutorNet
  compare   head-to-head estimator comparison: one CTP router, the 4bit,
            wmewma, pdr and lqi estimators swapped in on the default grid
  replicate one protocol across K independent seeds, with mean ± stddev
  scenario  run one declarative scenario (-preset NAME | -spec FILE | -list)
  sweep     expand a parameter grid into replicated runs; default grid is
            3 topologies x 2 powers x 2 protocols (12 cells)
  all       everything except fig3

common flags:
  -seed N       master seed (replica and sweep seeds derive from it; default 1)
  -minutes M    simulated duration per run (default 25)
  -workers W    parallel runs; <2 = serial (default: all CPUs).
                Results are byte-identical for every worker count.
  -cpuprofile F write a CPU profile of the run to F (go tool pprof)
  -memprofile F write an end-of-run heap profile to F (go tool pprof)

fig3 flags:      -hours H (duration), -from H / -until H (degradation window)
replicate flags: -proto P (protocol name), -power dBm, -seeds K,
                 -estimator E (4bit, wmewma, pdr, lqi; CTP family only)
scenario flags:  -preset NAME, -spec FILE (JSON Spec), -list, -estimator E
sweep flags:     -spec FILE (JSON Sweep), -replicates K (seeds per cell),
                 -csv FILE, -jsonl FILE ('-' = stdout)

Spec and Sweep JSON schemas, every knob, and worked examples are in
docs/SCENARIOS.md; examples/sweep shows the same through the Go API.`)
}
