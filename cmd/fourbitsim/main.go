// Command fourbitsim runs the paper's experiments and arbitrary scenario
// sweeps. The figure subcommands regenerate the measured figures of
// "Four-Bit Wireless Link Estimation" (HotNets 2007) through their
// scenario presets; `scenario` and `sweep` run declarative JSON specs (see
// docs/SCENARIOS.md for the cookbook and DESIGN.md for the experiment
// index); `timeline` runs the agility figure — time-resolved windowed cost
// around a scripted parent death, per estimator kind.
//
// The independent runs behind a figure, scenario replication, or sweep
// execute on a worker pool sized by -workers (default: all CPUs); results
// are byte-identical for every pool size.
//
// Usage:
//
//	fourbitsim fig2      [-seed N] [-minutes M] [-workers W]
//	fourbitsim fig3      [-seed N] [-hours H] [-from H] [-until H]
//	fourbitsim fig6      [-seed N] [-minutes M] [-workers W]
//	fourbitsim fig7      [-seed N] [-minutes M] [-workers W]
//	fourbitsim fig8      [-seed N] [-minutes M] [-workers W]
//	fourbitsim headline  [-seed N] [-minutes M] [-workers W]
//	fourbitsim compare   [-seed N] [-minutes M] [-workers W]
//	fourbitsim timeline  [-seed N] [-minutes M] [-workers W] [-csv FILE] [-jsonl FILE]
//	fourbitsim replicate [-seed N] [-minutes M] [-workers W] [-proto P] [-power dBm] [-seeds K] [-estimator E]
//	fourbitsim scenario  [-preset NAME | -spec FILE | -list] [-seed N] [-workers W] [-estimator E]
//	                     [-shards S] [-timeline-csv FILE] [-timeline-jsonl FILE] [-estfeed-dir DIR]
//	fourbitsim sweep     [-spec FILE] [-seed N] [-minutes M] [-replicates K]
//	                     [-csv FILE] [-jsonl FILE] [-workers W] [-shards S]
//	fourbitsim serve     [-addr HOST:PORT] [-queue-depth N] [-overflow P]
//	                     [-request-timeout D] [-idle-evict D] [-snapshot-dir DIR]
//	fourbitsim feedconv  -in FILE|DIR [-out DIR] [-to binary|jsonl] [-batch N]
//	                     [-replay URL [-wire binary|jsonl] [-kind E] [-seed N]]
//	fourbitsim all       [-seed N] [-minutes M] [-workers W]
//
// Every subcommand also accepts -cpuprofile FILE and -memprofile FILE to
// capture paper-scale pprof profiles of exactly the workload it runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"fourbit/internal/core"
	"fourbit/internal/experiment"
	"fourbit/internal/scenario"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	run, ok := subcommands()[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "fourbitsim: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	run(args)
}

// subcommands maps each subcommand to its runner. Every runner builds its
// flags through commonFlags, so the shared knobs (seed, duration, workers,
// profiles) cannot drift between subcommands.
func subcommands() map[string]func([]string) {
	return map[string]func([]string){
		"fig2": func(args []string) {
			c := newCommonFlags("fig2")
			minutes := c.minutes()
			defer c.parse(args)()
			scenario.RunFig2(*c.seed, *minutes, *c.workers).Fprint(os.Stdout)
		},
		"fig3": runFig3,
		"fig6": func(args []string) {
			c := newCommonFlags("fig6")
			minutes := c.minutes()
			defer c.parse(args)()
			scenario.RunFig6(*c.seed, *minutes, *c.workers).Fprint(os.Stdout)
		},
		"fig7": func(args []string) {
			c := newCommonFlags("fig7")
			minutes := c.minutes()
			defer c.parse(args)()
			scenario.RunPowerSweep(*c.seed, *minutes, *c.workers).FprintFig7(os.Stdout)
		},
		"fig8": func(args []string) {
			c := newCommonFlags("fig8")
			minutes := c.minutes()
			defer c.parse(args)()
			scenario.RunPowerSweep(*c.seed, *minutes, *c.workers).FprintFig8(os.Stdout)
		},
		"headline": func(args []string) {
			c := newCommonFlags("headline")
			minutes := c.minutes()
			defer c.parse(args)()
			scenario.RunHeadline(*c.seed, *minutes, *c.workers).Fprint(os.Stdout)
		},
		"compare": func(args []string) {
			c := newCommonFlags("compare")
			minutes := c.minutes()
			defer c.parse(args)()
			scenario.RunEstCompare(*c.seed, *minutes, *c.workers).Fprint(os.Stdout)
		},
		"timeline":  runTimeline,
		"replicate": runReplicate,
		"scenario":  runScenario,
		"sweep":     runSweep,
		"serve":     runServe,
		"feedconv":  runFeedconv,
		"all": func(args []string) {
			c := newCommonFlags("all")
			minutes := c.minutes()
			defer c.parse(args)()
			scenario.RunFig2(*c.seed, *minutes, *c.workers).Fprint(os.Stdout)
			fmt.Println()
			scenario.RunFig6(*c.seed, *minutes, *c.workers).Fprint(os.Stdout)
			fmt.Println()
			sweep := scenario.RunPowerSweep(*c.seed, *minutes, *c.workers)
			sweep.FprintFig7(os.Stdout)
			fmt.Println()
			sweep.FprintFig8(os.Stdout)
			fmt.Println()
			scenario.RunHeadline(*c.seed, *minutes, *c.workers).Fprint(os.Stdout)
		},
	}
}

// commonFlags registers the knobs every subcommand shares — the master
// seed, the worker pool, and the pprof capture flags — on one FlagSet, plus
// opt-in helpers for the duration flags, so subcommands assemble their
// interface from the same parts instead of redeclaring them.
type commonFlags struct {
	fs         *flag.FlagSet
	seed       *uint64
	workers    *int
	cpuProfile *string
	memProfile *string
}

func newCommonFlags(cmd string) *commonFlags {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	return &commonFlags{
		fs:         fs,
		seed:       fs.Uint64("seed", 1, "experiment seed (replicate/sweep seeds derive from it)"),
		workers:    fs.Int("workers", experiment.DefaultWorkers(), "parallel runs (<2 = serial)"),
		cpuProfile: fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)"),
		memProfile: fs.String("memprofile", "", "write an end-of-run heap profile to this file (inspect with go tool pprof)"),
	}
}

// minutes registers the standard run-length flag (for subcommands measured
// in minutes; fig3 registers hours instead).
func (c *commonFlags) minutes() *float64 {
	return c.fs.Float64("minutes", 25, "simulated duration per run (minutes)")
}

// shards registers the region-sharding override (for subcommands that
// compile scenario specs). Only explicit counts are accepted here; the
// auto/serial selection lives in the spec's Shards field.
func (c *commonFlags) shards() *int {
	return c.fs.Int("shards", 0, "force this many region shards per run (default: auto — serial below city scale)")
}

// parse parses args, validates the shared flags, and starts any requested
// profiles. It returns the finish function the caller must defer: profiles
// are finalized when the subcommand returns normally (error exits abandon
// them).
func (c *commonFlags) parse(args []string) (finish func()) {
	if err := c.fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if f := c.fs.Lookup("minutes"); f != nil {
		if m, ok := f.Value.(flag.Getter).Get().(float64); ok && m <= 0 {
			fatal(fmt.Errorf("-minutes must be positive, got %g", m))
		}
	}
	if f := c.fs.Lookup("shards"); f != nil && c.set("shards") {
		if s, ok := f.Value.(flag.Getter).Get().(int); ok && s < 1 {
			fatal(fmt.Errorf("-shards must be at least 1, got %d", s))
		}
	}
	finish = func() {}
	if *c.memProfile != "" {
		path := *c.memProfile
		finish = func() {
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}
	}
	if *c.cpuProfile != "" {
		f, err := os.Create(*c.cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		memFinish := finish
		finish = func() {
			pprof.StopCPUProfile()
			f.Close()
			memFinish()
		}
	}
	return finish
}

// set reports whether the user passed name explicitly.
func (c *commonFlags) set(name string) bool {
	set := false
	c.fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runFig3 is the one bespoke-duration subcommand (hours, not minutes).
func runFig3(args []string) {
	c := newCommonFlags("fig3")
	hours := c.fs.Float64("hours", 12, "simulated duration (hours)")
	from := c.fs.Float64("from", 4, "degradation start (hours)")
	until := c.fs.Float64("until", 6, "degradation end (hours)")
	defer c.parse(args)()
	cfg := experiment.DefaultFig3Config(*c.seed)
	cfg.Duration = sim.FromSeconds(*hours * 3600)
	cfg.DegradeFrom = sim.FromSeconds(*from * 3600)
	cfg.DegradeUntil = sim.FromSeconds(*until * 3600)
	experiment.RunFig3(cfg).Fprint(os.Stdout)
}

// runTimeline executes the agility figure: windowed cost timelines around a
// scripted parent death, one run per estimator kind, plus the recovery-time
// table and optional long-format exports.
func runTimeline(args []string) {
	c := newCommonFlags("timeline")
	minutes := c.minutes()
	csvOut := c.fs.String("csv", "", "write the per-window timelines as CSV to this file ('-' = stdout)")
	jsonlOut := c.fs.String("jsonl", "", "write the per-run timelines as JSONL to this file ('-' = stdout)")
	defer c.parse(args)()
	r := scenario.RunAgility(*c.seed, *minutes, *c.workers)
	r.Fprint(os.Stdout)
	writeFile(*csvOut, "timeline CSV", func(f *os.File) error {
		return scenario.WriteTimelineCSV(f, r.TimelineRows())
	})
	writeFile(*jsonlOut, "timeline JSONL", func(f *os.File) error {
		return scenario.WriteTimelineJSONL(f, r.TimelineRows())
	})
}

func runReplicate(args []string) {
	c := newCommonFlags("replicate")
	minutes := c.minutes()
	proto := c.fs.String("proto", "4B", "protocol under test (4B, CTP, CTP+unidir, CTP+white, CTP-unlimited, MultiHopLQI)")
	estimator := c.fs.String("estimator", "", "link-estimator kind for CTP-family protocols (4bit, wmewma, pdr, lqi; empty = the protocol default)")
	power := c.fs.Float64("power", 0, "transmit power (dBm)")
	nSeeds := c.fs.Int("seeds", 5, "number of independent seeds")
	defer c.parse(args)()
	p, err := experiment.ParseProtocol(*proto)
	if err != nil {
		fatal(err)
	}
	rc := experiment.DefaultRunConfig(p, topo.Mirage(*c.seed), *c.seed)
	rc.TxPowerDBm = *power
	rc.Duration = sim.FromSeconds(*minutes * 60)
	if *estimator != "" {
		if p == experiment.ProtoMultiHopLQI {
			fatal(fmt.Errorf("-estimator does not apply to MultiHopLQI (estimation is inline)"))
		}
		kind, err := core.ParseEstimatorKind(*estimator)
		if err != nil {
			fatal(err)
		}
		rc.Estimator = kind
	}
	experiment.ReplicateWorkers(rc, *nSeeds, *c.workers).Fprint(os.Stdout)
}

// runScenario executes one scenario from a preset or a JSON spec file.
// Explicit -seed/-minutes/-replicates/-estimator flags override what the
// preset or spec file says.
func runScenario(args []string) {
	c := newCommonFlags("scenario")
	minutes := c.minutes()
	shards := c.shards()
	specFile := c.fs.String("spec", "", "JSON spec file (see docs/SCENARIOS.md)")
	preset := c.fs.String("preset", "", "built-in preset name (see -list)")
	list := c.fs.Bool("list", false, "list built-in presets and exit")
	replicates := c.fs.Int("replicates", 3, "seeds per scenario (overridden by the spec's Replicates)")
	estimator := c.fs.String("estimator", "", "link-estimator kind for CTP-family protocols (4bit, wmewma, pdr, lqi)")
	tlCSV := c.fs.String("timeline-csv", "", "write recorded timelines as CSV to this file ('-' = stdout; needs TimelineS in the spec)")
	tlJSONL := c.fs.String("timeline-jsonl", "", "write recorded timelines as JSONL to this file ('-' = stdout)")
	estFeed := c.fs.String("estfeed-dir", "", "record each node's estimator event stream to node-<addr>.jsonl files in this directory, replayable into `fourbitsim serve` (single run; Replicates is ignored)")
	defer c.parse(args)()
	if *list {
		fmt.Println("built-in scenario presets:")
		for _, p := range scenario.Presets() {
			fmt.Printf("  %-26s %s\n", p.Name, p.Desc)
		}
		return
	}
	var spec scenario.Spec
	switch {
	case *specFile != "":
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fatal(err)
		}
		spec, err = scenario.ParseSpec(data)
		if err != nil {
			fatal(err)
		}
	case *preset != "":
		p, ok := scenario.Preset(*preset)
		if !ok {
			fatal(fmt.Errorf("unknown preset %q (use -list)", *preset))
		}
		spec = p.Spec
	default:
		fatal(fmt.Errorf("scenario needs -preset NAME, -spec FILE, or -list"))
	}
	if c.set("seed") {
		spec.Seed = *c.seed
	}
	if c.set("minutes") {
		spec.DurationMin = *minutes
	}
	if c.set("replicates") {
		spec.Replicates = *replicates
	}
	if c.set("estimator") {
		spec.Estimator = *estimator
	}
	if c.set("shards") {
		spec.Shards = *shards
	}
	var rep *experiment.Replicated
	var err error
	if *estFeed != "" {
		rep, err = runScenarioWithFeed(&spec, *estFeed)
	} else {
		rep, err = spec.Run(*c.workers)
	}
	if err != nil {
		fatal(err)
	}
	name := spec.Name
	if name == "" {
		name = "scenario"
	}
	fmt.Printf("%s:\n", name)
	rep.Fprint(os.Stdout)
	scenario.FprintRecovery(os.Stdout, &spec, rep)
	rows := scenario.TimelineRows(name, rep)
	writeFile(*tlCSV, "timeline CSV", func(f *os.File) error {
		return scenario.WriteTimelineCSV(f, rows)
	})
	writeFile(*tlJSONL, "timeline JSONL", func(f *os.File) error {
		return scenario.WriteTimelineJSONL(f, rows)
	})
}

// runSweep executes a parameter grid and writes its exports. With a spec
// file, explicit -seed/-minutes/-replicates flags override the file's base.
func runSweep(args []string) {
	c := newCommonFlags("sweep")
	minutes := c.minutes()
	shards := c.shards()
	specFile := c.fs.String("spec", "", "JSON Sweep spec file (see docs/SCENARIOS.md)")
	replicates := c.fs.Int("replicates", 3, "seeds per grid cell (overridden by the spec's Replicates)")
	csvOut := c.fs.String("csv", "", "write the result table as CSV to this file ('-' = stdout)")
	jsonlOut := c.fs.String("jsonl", "", "write per-cell JSONL results to this file ('-' = stdout)")
	defer c.parse(args)()
	var sw scenario.Sweep
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fatal(err)
		}
		sw, err = scenario.ParseSweep(data)
		if err != nil {
			fatal(err)
		}
		if c.set("seed") {
			sw.Base.Seed = *c.seed
		}
		if c.set("minutes") {
			sw.Base.DurationMin = *minutes
		}
		if c.set("replicates") {
			sw.Base.Replicates = *replicates
		}
	} else {
		sw = scenario.DefaultSweep(*c.seed, *minutes, *replicates)
	}
	if c.set("shards") {
		sw.Base.Shards = *shards
	}
	res, err := sw.Run(*c.workers)
	if err != nil {
		fatal(err)
	}
	res.Fprint(os.Stdout)
	writeFile(*csvOut, "CSV", func(f *os.File) error { return res.WriteCSV(f) })
	writeFile(*jsonlOut, "JSONL", func(f *os.File) error { return res.WriteJSONL(f) })
}

// writeFile routes an export to a path ('-' = stdout; empty = skip),
// treating close failures as fatal — an ENOSPC write-back would silently
// truncate the results of a possibly hours-long run.
func writeFile(path, what string, emit func(*os.File) error) {
	if path == "" {
		return
	}
	if path == "-" {
		if err := emit(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := emit(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s to %s\n", what, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, `fourbitsim — reproduce "Four-Bit Wireless Link Estimation" (HotNets'07)
and run declarative scenarios and parameter sweeps on the same harness.

subcommands:
  fig2      routing trees + cost: CTP(10), MultiHopLQI, CTP(unlimited)
  fig3      12h MultiHopLQI run; PRR collapses while LQI stays high
  fig6      design space: CTP, +unidir, +white, 4B, MultiHopLQI
  fig7      power sweep 0/-10/-20 dBm: cost & depth, 4B vs MultiHopLQI
  fig8      power sweep: per-node delivery boxplots
  headline  4B vs MultiHopLQI on Mirage and TutorNet
  compare   head-to-head estimator comparison: one CTP router, the 4bit,
            wmewma, pdr and lqi estimators swapped in on the default grid
  timeline  the agility figure: windowed cost timelines around a scripted
            parent death, per estimator kind, with recovery-time
  replicate one protocol across K independent seeds, with mean ± stddev
  scenario  run one declarative scenario (-preset NAME | -spec FILE | -list)
  sweep     expand a parameter grid into replicated runs; default grid is
            3 topologies x 2 powers x 2 protocols (12 cells)
  serve     host link estimators as a service: HTTP event ingest (JSONL or
            binary batches), table/cost queries, snapshot/restore, drain
  feedconv  convert recorded estimator feeds between JSONL and the binary
            batch format, or replay feeds of either format into a server
  all       everything except fig3

common flags:
  -seed N       master seed (replica and sweep seeds derive from it; default 1)
  -minutes M    simulated duration per run (default 25)
  -workers W    parallel runs; <2 = serial (default: all CPUs).
                Results are byte-identical for every worker count.
  -cpuprofile F write a CPU profile of the run to F (go tool pprof)
  -memprofile F write an end-of-run heap profile to F (go tool pprof)

fig3 flags:      -hours H (duration), -from H / -until H (degradation window)
timeline flags:  -csv FILE / -jsonl FILE (per-window timeline export)
replicate flags: -proto P (protocol name), -power dBm, -seeds K,
                 -estimator E (4bit, wmewma, pdr, lqi; CTP family only)
scenario flags:  -preset NAME, -spec FILE (JSON Spec), -list, -estimator E,
                 -shards S (force S region shards per run; default auto —
                 city-scale runs shard, smaller ones stay serial),
                 -timeline-csv FILE / -timeline-jsonl FILE,
                 -estfeed-dir DIR (record per-node estimator feeds for serve)
sweep flags:     -spec FILE (JSON Sweep), -replicates K (seeds per cell),
                 -csv FILE, -jsonl FILE ('-' = stdout), -shards S
serve flags:     -addr HOST:PORT, -queue-depth N, -overflow backpressure|drop-oldest,
                 -request-timeout D, -idle-evict D, -max-instances N,
                 -snapshot-dir DIR (restore at boot, write back on SIGTERM),
                 -drain-timeout D
feedconv flags:  -in FILE|DIR (node-<addr>.jsonl / .fbb feeds), -out DIR,
                 -to binary|jsonl (conversion direction), -batch N (events
                 per binary frame), -replay URL (stream feeds into a live
                 server instead), -wire binary|jsonl (replay format),
                 -kind E, -seed N (replayed instance parameters)

Spec and Sweep JSON schemas, every knob, timelines and the recovery-time
metric are documented in docs/SCENARIOS.md; examples/sweep shows the same
through the Go API.`)
}
