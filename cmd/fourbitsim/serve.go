package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"fourbit/internal/core"
	"fourbit/internal/experiment"
	"fourbit/internal/packet"
	"fourbit/internal/scenario"
	"fourbit/internal/serve"
)

// runServe starts the estimation service: an HTTP/JSONL server hosting
// estimator instances (internal/serve). SIGTERM/SIGINT drains gracefully;
// with -snapshot-dir, state is restored from disk at startup and written
// back on shutdown, so a kill/restart cycle loses nothing.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8404", "listen address (host:port; port 0 picks a free port)")
	queueDepth := fs.Int("queue-depth", 1024, "per-instance ingest queue bound")
	overflow := fs.String("overflow", "backpressure", "full-queue policy: backpressure (429 + Retry-After) or drop-oldest")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request deadline (ingest reads and query barrier waits)")
	idleEvict := fs.Duration("idle-evict", 0, "evict instances untouched for this long (0 = never)")
	maxInstances := fs.Int("max-instances", 4096, "concurrent instance bound")
	snapDir := fs.String("snapshot-dir", "", "restore instance snapshots (*.json) from this directory at startup and write them back on shutdown")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	policy, err := serve.ParseOverflowPolicy(*overflow)
	if err != nil {
		fatal(err)
	}
	srv := serve.NewServer(serve.Options{
		QueueDepth:     *queueDepth,
		Policy:         policy,
		RequestTimeout: *reqTimeout,
		IdleEvict:      *idleEvict,
		MaxInstances:   *maxInstances,
	})
	if *snapDir != "" {
		n, err := restoreSnapshotDir(srv, *snapDir)
		if err != nil {
			fatal(err)
		}
		if n > 0 {
			fmt.Printf("restored %d instance(s) from %s\n", n, *snapDir)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	fmt.Printf("fourbitsim serve listening on http://%s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		fatal(err)
	case sig := <-sigCh:
		fmt.Printf("%v: draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Refuse new work, snapshot consistent state, then flush and stop.
	srv.StopIngest()
	if *snapDir != "" {
		n, err := writeSnapshotDir(srv, ctx, *snapDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "snapshot on shutdown:", err)
		} else {
			fmt.Printf("snapshotted %d instance(s) to %s\n", n, *snapDir)
		}
	}
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "drain:", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fatal(err)
	}
}

// restoreSnapshotDir loads every *.json instance snapshot in dir.
func restoreSnapshotDir(srv *serve.Server, dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return n, err
		}
		var snap serve.InstanceSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return n, fmt.Errorf("%s: %w", path, err)
		}
		if err := srv.RestoreSnapshot(&snap); err != nil {
			return n, fmt.Errorf("%s: %w", path, err)
		}
		n++
	}
	return n, nil
}

// writeSnapshotDir serializes every instance to dir/<name>.json.
func writeSnapshotDir(srv *serve.Server, ctx context.Context, dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	snaps, err := srv.SnapshotAll(ctx)
	if err != nil {
		return 0, err
	}
	for _, snap := range snaps {
		data, err := json.Marshal(snap)
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(filepath.Join(dir, snap.Name+".json"), data, 0o644); err != nil {
			return 0, err
		}
	}
	return len(snaps), nil
}

// runScenarioWithFeed executes a scenario as a single run, wrapping every
// node's estimator in a serve.FeedRecorder that writes node-<addr>.jsonl
// into dir — the files replay directly into `fourbitsim serve` instance
// event streams (see docs/SCENARIOS.md, "Replaying a scenario into a live
// server"). Recording is a pass-through tap: the run's results are
// bit-identical to the unrecorded scenario.
func runScenarioWithFeed(spec *scenario.Spec, dir string) (*experiment.Replicated, error) {
	if spec.Replicates > 1 {
		fmt.Fprintf(os.Stderr, "note: -estfeed-dir records a single run; ignoring Replicates=%d\n", spec.Replicates)
		spec.Replicates = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rc, err := spec.RunConfig()
	if err != nil {
		return nil, err
	}
	var files []*os.File
	var bufs []*bufio.Writer
	var recs []*serve.FeedRecorder
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	rc.WrapEstimator = func(addr packet.Addr, est core.LinkEstimator) core.LinkEstimator {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("node-%d.jsonl", addr)))
		if err != nil {
			fatal(err)
		}
		b := bufio.NewWriterSize(f, 1<<16)
		r := serve.NewFeedRecorder(est, b)
		files, bufs, recs = append(files, f), append(bufs, b), append(recs, r)
		return r
	}
	res := experiment.Run(rc)
	for i, r := range recs {
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("estimator feed %d: %w", i, err)
		}
	}
	for _, b := range bufs {
		if err := b.Flush(); err != nil {
			return nil, err
		}
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	files = nil
	fmt.Printf("wrote %d estimator feed(s) to %s\n", len(recs), dir)
	return experiment.Aggregate(rc.Protocol, rc.TxPowerDBm, []uint64{rc.Seed}, []*experiment.Result{res}), nil
}
