package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binPath is the fourbitsim binary built once by TestMain: the CLI contract
// (exit codes, usage on errors) is tested against the real executable, not
// in-process approximations.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fourbitsim-cli")
	if err != nil {
		panic(err)
	}
	binPath = filepath.Join(dir, "fourbitsim")
	out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
	if err != nil {
		panic("building fourbitsim: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// TestCLIErrorContract: every way to misuse the CLI exits non-zero with a
// diagnostic AND usage guidance on stderr — never a silent failure, never a
// zero exit, never a panic trace.
func TestCLIErrorContract(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		// All wantErr substrings must appear on stderr.
		wantErr []string
		// wantOut substrings must appear on stdout (usually none for errors).
		wantOut []string
	}{
		{
			name: "no args", args: nil, wantCode: 2,
			wantErr: []string{"subcommands:", "fourbitsim"},
		},
		{
			name: "unknown subcommand", args: []string{"frobnicate"}, wantCode: 2,
			wantErr: []string{`unknown subcommand "frobnicate"`, "subcommands:"},
		},
		{
			name: "unknown flag", args: []string{"fig2", "-bogus"}, wantCode: 2,
			wantErr: []string{"flag provided but not defined: -bogus", "Usage of fig2"},
		},
		{
			name: "non-positive minutes", args: []string{"fig2", "-minutes", "0"}, wantCode: 2,
			wantErr: []string{"-minutes must be positive"},
		},
		{
			name: "malformed flag value", args: []string{"fig2", "-minutes", "soon"}, wantCode: 2,
			wantErr: []string{`invalid value "soon"`, "Usage of fig2"},
		},
		{
			name: "scenario without selection", args: []string{"scenario"}, wantCode: 2,
			wantErr: []string{"scenario needs -preset NAME, -spec FILE, or -list"},
		},
		{
			name: "scenario unknown preset", args: []string{"scenario", "-preset", "nope"}, wantCode: 2,
			wantErr: []string{`unknown preset "nope"`},
		},
		{
			name: "scenario zero shards", args: []string{"scenario", "-shards", "0"}, wantCode: 2,
			wantErr: []string{"-shards must be at least 1"},
		},
		{
			name: "scenario malformed shards", args: []string{"scenario", "-shards", "x"}, wantCode: 2,
			wantErr: []string{`invalid value "x"`, "Usage of scenario"},
		},
		{
			name: "scenario missing spec file", args: []string{"scenario", "-spec", "/nonexistent/x.json"}, wantCode: 2,
			wantErr: []string{"/nonexistent/x.json"},
		},
		{
			name: "serve bad overflow policy", args: []string{"serve", "-overflow", "yolo"}, wantCode: 2,
			wantErr: []string{"yolo"},
		},
		{
			name: "serve unparseable address", args: []string{"serve", "-addr", "not-an-address"}, wantCode: 2,
			wantErr: []string{"not-an-address"},
		},
		{
			name: "scenario list succeeds", args: []string{"scenario", "-list"}, wantCode: 0,
			wantOut: []string{"built-in scenario presets:"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(binPath, tc.args...)
			var stdout, stderr strings.Builder
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			err := cmd.Run()
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("running %v: %v", tc.args, err)
			}
			if code != tc.wantCode {
				t.Errorf("exit code %d, want %d\nstderr: %s", code, tc.wantCode, stderr.String())
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(stderr.String(), want) {
					t.Errorf("stderr missing %q:\n%s", want, stderr.String())
				}
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(stdout.String(), want) {
					t.Errorf("stdout missing %q:\n%s", want, stdout.String())
				}
			}
			if strings.Contains(stderr.String(), "panic:") {
				t.Errorf("CLI panicked:\n%s", stderr.String())
			}
		})
	}
}
