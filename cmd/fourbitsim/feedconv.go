package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"fourbit/internal/core"
	"fourbit/internal/packet"
	"fourbit/internal/serve/client"
	"fourbit/internal/serve/wire"
)

// runFeedconv converts recorded estimator feeds between the JSONL and
// binary batch wire formats, and replays feeds of either format into a
// running `fourbitsim serve` — the offline half of the binary ingest path.
// Conversion is certified lossless: a converted feed replays into the
// bit-identical estimator state (TestFeedRecorderReplayReproducesEstimator
// pins it).
func runFeedconv(args []string) {
	fs := flag.NewFlagSet("feedconv", flag.ExitOnError)
	in := fs.String("in", "", "feed file or directory of feeds (node-<addr>.jsonl / node-<addr>.fbb)")
	out := fs.String("out", "", "output directory for converted feeds (default: alongside the input)")
	to := fs.String("to", "binary", "conversion target: binary (*.jsonl -> *.fbb) or jsonl (*.fbb -> *.jsonl)")
	batch := fs.Int("batch", wire.DefaultBatchEvents, "events per binary frame (conversion and replay)")
	replay := fs.String("replay", "", "replay the feeds into the server at this base URL (e.g. http://127.0.0.1:8404) instead of converting")
	wireFmt := fs.String("wire", "binary", "replay wire format: binary or jsonl")
	kind := fs.String("kind", "", "estimator kind for replayed instances (4bit, wmewma, pdr, lqi; empty = server default)")
	seed := fs.Uint64("seed", 1, "estimator seed for replayed instances")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *in == "" {
		fatal(fmt.Errorf("feedconv needs -in FILE|DIR"))
	}
	if *replay != "" {
		if *wireFmt != "binary" && *wireFmt != "jsonl" {
			fatal(fmt.Errorf("-wire must be binary or jsonl, got %q", *wireFmt))
		}
		if err := replayFeeds(*in, *replay, *wireFmt == "jsonl", *batch, *kind, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *to != "binary" && *to != "jsonl" {
		fatal(fmt.Errorf("-to must be binary or jsonl, got %q", *to))
	}
	if err := convertFeeds(*in, *out, *to == "jsonl", *batch); err != nil {
		fatal(err)
	}
}

// feedFiles expands -in into feed paths: the file itself, or the directory's
// feeds carrying the wanted extensions.
func feedFiles(in string, exts ...string) ([]string, error) {
	info, err := os.Stat(in)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{in}, nil
	}
	var paths []string
	for _, ext := range exts {
		found, err := filepath.Glob(filepath.Join(in, "*"+ext))
		if err != nil {
			return nil, err
		}
		paths = append(paths, found...)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no %s feeds in %s", strings.Join(exts, "/"), in)
	}
	return paths, nil
}

// convertFeeds rewrites each input feed in the other wire format.
func convertFeeds(in, out string, toJSONL bool, batch int) error {
	srcExt, dstExt := ".jsonl", ".fbb"
	if toJSONL {
		srcExt, dstExt = ".fbb", ".jsonl"
	}
	paths, err := feedFiles(in, srcExt)
	if err != nil {
		return err
	}
	for _, path := range paths {
		dstDir := out
		if dstDir == "" {
			dstDir = filepath.Dir(path)
		} else if err := os.MkdirAll(dstDir, 0o755); err != nil {
			return err
		}
		dst := filepath.Join(dstDir, strings.TrimSuffix(filepath.Base(path), srcExt)+dstExt)
		n, err := convertFeedFile(path, dst, toJSONL, batch)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s -> %s (%d events)\n", path, dst, n)
	}
	return nil
}

func convertFeedFile(src, dst string, toJSONL bool, batch int) (int64, error) {
	sf, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer sf.Close()
	df, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(df, 1<<16)
	var n int64
	if toJSONL {
		n, err = wire.ConvertBinaryToJSONL(w, bufio.NewReaderSize(sf, 1<<16))
	} else {
		n, err = wire.ConvertJSONLToBinary(w, sf, batch)
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := df.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dst)
		return 0, err
	}
	return n, nil
}

// replayFeeds streams each feed into the server, one instance per feed file
// (named after the file stem; node-<addr> stems set the instance's self
// address), over the chosen wire format.
func replayFeeds(in, baseURL string, jsonl bool, batch int, kindName string, seed uint64) error {
	var kind core.EstimatorKind
	if kindName != "" {
		var err error
		if kind, err = core.ParseEstimatorKind(kindName); err != nil {
			return err
		}
	}
	paths, err := feedFiles(in, ".jsonl", ".fbb")
	if err != nil {
		return err
	}
	for _, path := range paths {
		stem := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		var self packet.Addr
		if rest, ok := strings.CutPrefix(stem, "node-"); ok {
			if a, err := strconv.ParseUint(rest, 10, 16); err == nil {
				self = packet.Addr(a)
			}
		}
		if err := client.CreateInstance(nil, baseURL, stem, kind, self, seed, nil); err != nil {
			return err
		}
		feed := client.New(baseURL, stem, client.Options{BatchEvents: batch, JSONL: jsonl})
		if err := replayFile(path, feed); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := feed.Flush(); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("replayed %s -> %s/%s (%d events)\n", path, baseURL, stem, feed.Stats().Sent)
	}
	return nil
}

// replayFile streams one feed file (either format, by extension) into feed.
func replayFile(path string, feed *client.Feed) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if filepath.Ext(path) == ".fbb" {
		fr := wire.NewFrameReader(bufio.NewReaderSize(f, 1<<16), 0, false)
		for {
			evs, err := fr.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			for i := range evs {
				if err := feed.Send(&evs[i]); err != nil {
					return err
				}
			}
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), wire.DefaultMaxBatchBytes)
	var dec wire.EventDecoder
	var ev wire.Event
	line := 0
	for sc.Scan() {
		line++
		if len(strings.TrimSpace(string(sc.Bytes()))) == 0 {
			continue
		}
		if err := dec.Decode(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if err := feed.Send(&ev); err != nil {
			return err
		}
	}
	return sc.Err()
}
