package fourbit

// One benchmark per paper figure (scaled-down durations so `go test
// -bench=.` finishes in minutes; the fourbitsim CLI runs paper-scale), plus
// the ablation benches DESIGN.md §5 calls out and micro-benchmarks of the
// hot paths. Each figure bench reports the figure's headline metrics as
// custom benchmark outputs (cost, delivery, depth) so regressions in the
// reproduced *shapes* — not just runtime — are visible in bench diffs.

import (
	"fmt"
	"runtime"
	"testing"

	"fourbit/internal/collect"
	"fourbit/internal/core"
	"fourbit/internal/experiment"
	"fourbit/internal/node"
	"fourbit/internal/packet"
	"fourbit/internal/phy"
	"fourbit/internal/sim"
	"fourbit/internal/topo"
)

const benchMinutes = 6 * sim.Minute

// skipInShort gates the multi-second figure and ablation benches out of
// short mode, leaving a fast smoke — BenchmarkSimulatedMinuteCTP plus the
// micro-benches — that CI runs on every PR (`go test -short -bench .`) so
// hot-path regressions surface without a multi-minute job.
func skipInShort(b *testing.B) {
	if testing.Short() {
		b.Skip("multi-second figure bench; skipped in -short (CI smoke)")
	}
}

func reportRun(b *testing.B, res *experiment.Result, prefix string) {
	b.ReportMetric(res.Cost, prefix+"cost")
	b.ReportMetric(res.MeanDepth, prefix+"depth")
	b.ReportMetric(res.DeliveryRatio*100, prefix+"delivery%")
}

// BenchmarkFig2RoutingTrees regenerates Figure 2: CTP with a 10-entry
// table vs MultiHopLQI vs CTP with an unrestricted table on Mirage.
func BenchmarkFig2RoutingTrees(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r := experiment.RunFig2(1, benchMinutes)
		reportRun(b, r.Runs[0], "ctp_")
		reportRun(b, r.Runs[1], "lqi_")
		reportRun(b, r.Runs[2], "unlimited_")
	}
}

// BenchmarkFig3LQIBlindspot regenerates Figure 3 (compressed): a
// MultiHopLQI run on TutorNet where an in-use link turns bursty; the PRR
// collapses while received-packet LQI stays saturated.
func BenchmarkFig3LQIBlindspot(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		cfg := experiment.DefaultFig3Config(1)
		cfg.Duration = 90 * sim.Minute
		cfg.DegradeFrom = 30 * sim.Minute
		cfg.DegradeUntil = 60 * sim.Minute
		cfg.Window = 5 * sim.Minute
		res := experiment.RunFig3(cfg)
		b.ReportMetric(res.PRRBefore, "prr_before")
		b.ReportMetric(res.PRRDuring, "prr_during")
		b.ReportMetric(res.LQIDuring, "lqi_during")
		b.ReportMetric(res.UnackedRateDuring, "unacked_per_h")
	}
}

// BenchmarkFig6DesignSpace regenerates Figure 6: the five estimator
// variants (CTP, +unidir, +white, 4B, MultiHopLQI) on Mirage, on the
// default worker pool (one worker per CPU).
func BenchmarkFig6DesignSpace(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r := experiment.RunFig6(1, benchMinutes)
		for _, res := range r.Runs {
			reportRun(b, res, res.Protocol.String()+"_")
		}
	}
}

// BenchmarkFig6DesignSpaceSerial is the same batch forced through one
// worker — the scheduler-scaling baseline. The ratio of this bench to
// BenchmarkFig6DesignSpace is the wall-clock speedup the pool delivers on
// this machine (the results themselves are identical; see
// TestRunAllMatchesSerial).
func BenchmarkFig6DesignSpaceSerial(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		experiment.RunFig6Workers(1, benchMinutes, 1)
	}
}

// BenchmarkFig7PowerSweep regenerates Figure 7: 4B vs MultiHopLQI at 0,
// -10 and -20 dBm on Mirage.
func BenchmarkFig7PowerSweep(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r := experiment.RunPowerSweep(1, benchMinutes)
		for j, pw := range r.Powers {
			b.ReportMetric(r.FB[j].Cost, "4B_cost_"+powerLabel(pw))
			b.ReportMetric(r.LQI[j].Cost, "LQI_cost_"+powerLabel(pw))
		}
	}
}

// BenchmarkFig8DeliveryDistribution regenerates Figure 8: the per-node
// delivery distributions behind the power sweep.
func BenchmarkFig8DeliveryDistribution(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r := experiment.RunPowerSweep(1, benchMinutes)
		last := len(r.Powers) - 1
		b.ReportMetric(minOf(r.FB[last].PerNodeDelivery)*100, "4B_worstnode%_-20dBm")
		b.ReportMetric(minOf(r.LQI[last].PerNodeDelivery)*100, "LQI_worstnode%_-20dBm")
	}
}

// BenchmarkEstimatorComparison regenerates the estimator head-to-head:
// one CTP router with the 4bit, wmewma, pdr and lqi estimators swapped in
// on the default grid. The reported per-estimator costs make the paper's
// qualitative ordering (4bit lowest) visible in bench diffs.
func BenchmarkEstimatorComparison(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r := experiment.RunEstCompare(1, benchMinutes)
		for _, res := range r.Runs {
			reportRun(b, res, string(res.Estimator)+"_")
		}
	}
}

// BenchmarkHeadline regenerates the abstract's comparison on both testbeds.
func BenchmarkHeadline(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		r := experiment.RunHeadline(1, benchMinutes)
		for j, name := range r.Testbeds {
			if r.LQI[j].Cost > 0 {
				gain := 100 * (r.LQI[j].Cost - r.FB[j].Cost) / r.LQI[j].Cost
				b.ReportMetric(gain, name+"_cost_gain%")
			}
		}
	}
}

func powerLabel(p float64) string {
	switch p {
	case 0:
		return "0dBm"
	case -10:
		return "-10dBm"
	case -20:
		return "-20dBm"
	}
	return "?"
}

func minOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------

// BenchmarkAblationStreams compares the full hybrid estimator against
// beacon-only estimation (no ack bit): the agility the unicast stream buys.
func BenchmarkAblationStreams(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		tp := topo.Mirage(1)
		full := experiment.DefaultRunConfig(experiment.Proto4B, tp, 1)
		full.Duration = benchMinutes
		noAck := experiment.DefaultRunConfig(experiment.ProtoCTPWhite, tp, 1)
		noAck.Duration = benchMinutes
		rFull, rNoAck := experiment.Run(full), experiment.Run(noAck)
		b.ReportMetric(rFull.Cost, "hybrid_cost")
		b.ReportMetric(rNoAck.Cost, "beacononly_cost")
		b.ReportMetric(rFull.DeliveryRatio*100, "hybrid_delivery%")
		b.ReportMetric(rNoAck.DeliveryRatio*100, "beacononly_delivery%")
	}
}

// BenchmarkAblationTablePolicy compares white/compare-gated replacement
// against the plain never-replace policy (ProtoCTPUnidir) at a small table,
// where admission policy decides which links exist at all.
func BenchmarkAblationTablePolicy(b *testing.B) {
	skipInShort(b)
	for i := 0; i < b.N; i++ {
		tp := topo.Mirage(1)
		with := experiment.DefaultRunConfig(experiment.Proto4B, tp, 1)
		with.Duration = benchMinutes
		without := experiment.DefaultRunConfig(experiment.ProtoCTPUnidir, tp, 1)
		without.Duration = benchMinutes
		rWith, rWithout := experiment.Run(with), experiment.Run(without)
		b.ReportMetric(rWith.Cost, "whitecompare_cost")
		b.ReportMetric(rWithout.Cost, "roomonly_cost")
	}
}

// BenchmarkAblationWindows sweeps the unicast window ku — the tradeoff
// between sample quality and agility that §3.3 fixes at ku=5.
func BenchmarkAblationWindows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ku := range []int{2, 5, 10} {
			est := core.New(1, func() core.Config {
				c := core.DefaultConfig()
				c.UnicastWindow = ku
				return c
			}(), nil, sim.NewRand(uint64(ku)))
			est.OnBeacon(7, &packet.LEFrame{Seq: 1}, core.RxMeta{White: true}, 0)
			est.OnBeacon(7, &packet.LEFrame{Seq: 2}, core.RxMeta{White: true}, 0)
			// Dead link from t=0: how many transmissions until ETX > 5?
			tx := 0
			for {
				est.TxResult(7, false)
				tx++
				if etx, _ := est.Quality(7); etx > 5 || tx > 500 {
					break
				}
			}
			b.ReportMetric(float64(tx), fmt.Sprintf("tx_to_detect_ku%d", ku))
		}
	}
}

// --- Micro-benchmarks of the hot paths -------------------------------------

func BenchmarkEstimatorOnBeacon(b *testing.B) {
	est := core.New(1, core.DefaultConfig(), nil, sim.NewRand(1))
	le := &packet.LEFrame{Seq: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		le.Seq++
		est.OnBeacon(packet.Addr(2+i%8), le, core.RxMeta{White: true}, sim.Time(i))
	}
}

func BenchmarkEstimatorTxResult(b *testing.B) {
	est := core.New(1, core.DefaultConfig(), nil, sim.NewRand(1))
	est.OnBeacon(7, &packet.LEFrame{Seq: 1}, core.RxMeta{White: true}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.TxResult(7, i%3 != 0)
	}
}

// BenchmarkCityScale measures the medium's steady-state transmission cost
// on city-scale deployments over the sparse audible-set channel. Geometry
// holds the neighborhood constant while n scales: a fixed-width urban
// corridor at constant density, so node count buys length, the audible
// degree stays flat, and the reported ns per simulated second must grow
// near-linearly in n for the spatial index to be doing its job (the dense
// medium visits all n−1 receivers per transmission, the sparse one only
// the ~constant audible set). The offered load is scripted at a fixed per-node rate and driven
// straight through the medium: end-to-end collection adds a ~√n multihop
// forwarding factor (every packet costs ~tree-depth transmissions) that is
// routing physics, not channel representation — BenchmarkCityCollection2k
// records that cost separately. Channel/medium construction sits outside
// the timer (it is a per-run one-time cost, dominated by the O(n²)
// shadowing draws the exactness contract requires), so allocs/op pins the
// steady-state path: deliveries must not allocate. The n=2000 case runs in
// -short and carries the allocs/op budget (scripts/alloc_budget.txt); the
// 1k/10k endpoints anchor the scaling ratio recorded in BENCH snapshots.
func BenchmarkCityScale(b *testing.B) {
	for _, n := range []int{1000, 2000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			if n != 2000 {
				skipInShort(b)
			}
			const (
				areaPerNodeM2 = 144 // constant density: n buys corridor length
				widthM        = 190 // ≈2 audible radii at exponent 4.0
				simSeconds    = 5
				periodMS      = 250 // 4 frames/s/node offered load
			)
			p := phy.DefaultParams()
			p.PathLossExponent = 4.0 // urban construction: shorter radio horizon
			p.SparseAboveN = 1
			tp := topo.Corridor(n, float64(n)*areaPerNodeM2/widthM, widthM, 9)
			pre := phy.PrecomputeGeo(tp, p)
			if !pre.Sparse() {
				b.Fatal("city bench fell back to the dense representation")
			}

			delivered := 0
			var audible int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				clock := sim.New(uint64(i))
				seeds := sim.NewSeedSpace(uint64(i))
				ch := pre.NewChannel(seeds)
				audible = ch.AudibleLinks()
				m := phy.NewMedium(clock, ch, phy.DefaultRadioParams(), phy.DefaultLQIParams(), seeds)
				for id := 0; id < n; id++ {
					m.Radio(id).OnReceive(func([]byte, phy.RxInfo) { delivered++ })
				}
				for id := 0; id < n; id++ {
					radio := m.Radio(id)
					frame := make([]byte, 30)
					phase := sim.Time(id%97) * 2 * sim.Millisecond
					for k := 0; k < simSeconds*1000/periodMS; k++ {
						clock.Schedule(sim.Time(k)*periodMS*sim.Millisecond+phase, func() {
							if !radio.Transmitting() {
								radio.Transmit(frame)
							}
						})
					}
				}
				runtime.GC() // construction garbage must not bill the timed region
				b.StartTimer()
				clock.RunUntil(simSeconds * sim.Second)
			}
			b.StopTimer()
			if delivered == 0 {
				b.Fatal("city bench delivered nothing; medium degenerate")
			}
			b.ReportMetric(100*float64(audible)/float64(n)/float64(n-1), "audible%")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(simSeconds*float64(b.N)), "ns/simsec")
		})
	}

	// The shard axis drives the same scripted load through the
	// region-sharded dispatch path (node.NewEnv with Shards=k): per-shard
	// event wheels, epoch barriers, cross-shard frame handoff. Results are
	// shard-count-invariant (TestShardCountInvariance*), so the only thing
	// the axis can vary is cost. What the ratio across counts means depends
	// on the runner: on a single-core machine (GOMAXPROCS=1) no count can
	// buy parallelism, so shards=8 over shards=1 is a direct measurement of
	// the barrier-and-handoff overhead — the number that must stay small
	// for the parallel win to survive on real cores. The sharded numbers
	// are not comparable to the serial n= sub-benches above run-for-run
	// (the handoff model delays every receiver-side effect by one epoch, a
	// different trajectory); ns/simsec comparisons across the axis are the
	// honest unit. Channel geometry is precomputed once per n and shared
	// across counts, exactly as the differential tests and batch runner
	// share it. The budgeted counts pin allocs/op in
	// scripts/alloc_budget.txt.
	shardTopos := map[int]*topo.Topology{}
	shardPres := map[int]*phy.ChannelPre{}
	for _, n := range []int{2000, 10000} {
		for _, shards := range []int{1, 2, 4, 8} {
			n, shards := n, shards
			b.Run(fmt.Sprintf("n=%d-shards=%d", n, shards), func(b *testing.B) {
				skipInShort(b)
				const (
					areaPerNodeM2 = 144
					widthM        = 190
					simSeconds    = 5
					periodMS      = 250
				)
				cfg := node.DefaultEnvConfig(0, 0)
				cfg.Phy.PathLossExponent = 4.0
				cfg.Phy.SparseAboveN = 1
				cfg.Shards = shards
				if shardPres[n] == nil {
					tp := topo.Corridor(n, float64(n)*areaPerNodeM2/widthM, widthM, 9)
					shardTopos[n], shardPres[n] = tp, phy.PrecomputeGeo(tp, cfg.Phy)
				}
				tp, pre := shardTopos[n], shardPres[n]
				if !pre.Sparse() {
					b.Fatal("sharded city bench fell back to the dense representation")
				}
				cfg.ChanPre = pre

				var delivered int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cfg.Seed = uint64(i)
					env := node.NewEnv(tp, cfg)
					// Receive counters are per shard: callbacks run on the
					// receiver's shard goroutine.
					got := make([]int64, shards)
					for id := 0; id < n; id++ {
						s := env.ShardOf[id]
						env.Medium.Radio(id).OnReceive(func([]byte, phy.RxInfo) { got[s]++ })
					}
					for id := 0; id < n; id++ {
						radio := env.Medium.Radio(id)
						clock := env.ClockFor(id)
						frame := make([]byte, 30)
						phase := sim.Time(id%97) * 2 * sim.Millisecond
						for k := 0; k < simSeconds*1000/periodMS; k++ {
							clock.Schedule(sim.Time(k)*periodMS*sim.Millisecond+phase, func() {
								if !radio.Transmitting() {
									radio.Transmit(frame)
								}
							})
						}
					}
					runtime.GC() // construction garbage must not bill the timed region
					b.StartTimer()
					env.Group.RunUntil(simSeconds * sim.Second)
					b.StopTimer()
					env.Close()
					for _, d := range got {
						delivered += d
					}
				}
				if delivered == 0 {
					b.Fatal("sharded city bench delivered nothing; handoff degenerate")
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(simSeconds*float64(b.N)), "ns/simsec")
			})
		}
	}
}

// BenchmarkCityCollection2k is the end-to-end companion: the full 4B
// collection stack on a 2000-node city block for a short run — tree
// formation, multihop forwarding, estimation, everything. No near-linear
// claim attaches to it: at constant density a single-sink tree deepens
// like √n (the 10k block converges ~22 hops deep), so forwarding work per
// delivered packet necessarily grows with scale. It exists so BENCH
// snapshots track what a city-scale protocol run actually costs.
func BenchmarkCityCollection2k(b *testing.B) {
	skipInShort(b)
	const n = 2000
	tp := topo.MultiFloor(n, 8, 268, 134, 9) // 144 m²/node/storey
	rc := experiment.DefaultRunConfig(experiment.Proto4B, tp, 9)
	rc.Duration = 15 * sim.Second
	rc.Warmup = 5 * sim.Second
	rc.SampleEvery = 5 * sim.Second
	wl := collect.DefaultWorkload()
	wl.BootWindow = 5 * sim.Second
	rc.Workload = wl
	envCfg := node.DefaultEnvConfig(rc.Seed, rc.TxPowerDBm)
	envCfg.Phy.PathLossExponent = 4.0
	rc.Env = &envCfg
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiment.Run(rc)
		b.ReportMetric(float64(res.Events)/15, "events/simsec")
		b.ReportMetric(res.DeliveryRatio*100, "delivery%")
	}
}

func BenchmarkSimulatedMinuteCTP(b *testing.B) {
	// End-to-end simulator throughput: one simulated minute of an 85-node
	// 4B collection network per iteration.
	for i := 0; i < b.N; i++ {
		tp := topo.Mirage(1)
		rc := experiment.DefaultRunConfig(experiment.Proto4B, tp, uint64(i+1))
		rc.Duration = 1 * sim.Minute
		rc.Warmup = 30 * sim.Second
		experiment.Run(rc)
	}
}
