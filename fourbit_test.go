package fourbit

import (
	"math"
	"testing"
)

// The facade tests exercise the public API exactly as the examples and a
// downstream user would.

func TestPublicEstimatorLifecycle(t *testing.T) {
	est := NewEstimator(1, DefaultEstimatorConfig(), nil, 42)
	le := &LEFrame{Seq: 1}
	if _, ok := est.OnBeacon(7, le, RxMeta{White: true}, 0); !ok {
		t.Fatal("OnBeacon failed")
	}
	le2 := &LEFrame{Seq: 2}
	est.OnBeacon(7, le2, RxMeta{White: true}, 0)
	etx, ok := est.Quality(7)
	if !ok || etx != 1.0 {
		t.Fatalf("Quality = (%v, %v), want (1.0, true)", etx, ok)
	}
	if !est.Pin(7) || !est.Unpin(7) {
		t.Fatal("pin bit plumbing broken")
	}
}

func TestPublicFeaturesSelectors(t *testing.T) {
	if !FourBitFeatures().AckBit || !FourBitFeatures().WhiteCompare {
		t.Fatal("FourBitFeatures incomplete")
	}
	if BroadcastOnlyFeatures().AckBit || BroadcastOnlyFeatures().WhiteCompare {
		t.Fatal("BroadcastOnlyFeatures not empty")
	}
}

func TestPublicTopologies(t *testing.T) {
	if Mirage(1).N() != 85 {
		t.Fatal("Mirage size wrong")
	}
	if TutorNet(1).N() != 94 {
		t.Fatal("TutorNet size wrong")
	}
	if Grid(3, 4, 5).N() != 12 || Line(7, 3).N() != 7 {
		t.Fatal("generator sizes wrong")
	}
}

func TestPublicRunSmallCollection(t *testing.T) {
	rc := DefaultRunConfig(Proto4B, Grid(3, 3, 14), 5)
	rc.Duration = 6 * Minute
	rc.Warmup = 2 * Minute
	res := Run(rc)
	if res.DeliveryRatio < 0.9 {
		t.Fatalf("delivery = %.3f on a small clean grid", res.DeliveryRatio)
	}
	if res.Cost < 1 || math.IsNaN(res.Cost) {
		t.Fatalf("cost = %v", res.Cost)
	}
	if res.MeanDepth <= 0 {
		t.Fatalf("depth = %v", res.MeanDepth)
	}
	if len(res.PerNodeDelivery) != 8 {
		t.Fatalf("per-node delivery entries = %d, want 8", len(res.PerNodeDelivery))
	}
}

func TestPublicGilbertElliott(t *testing.T) {
	ge := NewGilbertElliott(40, Second, Second, 3)
	bad := 0
	for i := 0; i < 1000; i++ {
		if ge.ExtraLossDB(Time(i)*100*Millisecond) > 0 {
			bad++
		}
	}
	if bad == 0 || bad == 1000 {
		t.Fatalf("G-E never changed state: bad=%d", bad)
	}
}

func TestPublicWorkloadDefaults(t *testing.T) {
	wl := DefaultWorkload()
	if wl.Period != 10*Second {
		t.Fatalf("default period = %v, want the paper's 10 s", wl.Period)
	}
}
